// Package workloads provides the 29 benchmark profiles used in the paper's
// evaluation (Rodinia [42] + Nvidia CUDA SDK [43]), recast as parameterized
// synthetic workloads.
//
// Substitution note (DESIGN.md §3): real CUDA binaries cannot run here, so
// each benchmark is a profile — memory intensity, read fraction, footprint,
// stride/random mix, burstiness — that drives a deterministic per-PE
// instruction/address generator. The generated streams then exercise real
// L1/L2 caches, MSHRs, the NoC, and HBM, reproducing the M2F2M traffic
// shape and the per-benchmark contrast the evaluation depends on.
package workloads

import (
	"fmt"
	"math/rand"
)

// Profile characterizes one benchmark's memory behaviour.
type Profile struct {
	Name string

	// MemRatio is the fraction of instructions that are (coalesced) memory
	// accesses; the rest are compute, which advance time without traffic.
	MemRatio float64

	// ReadFrac is the fraction of memory accesses that are reads. Typical
	// throughput workloads are read-dominant (§2.2).
	ReadFrac float64

	// FootprintLines is the per-PE working-set size in cache lines; it
	// determines L1/L2 hit rates against the fixed cache capacities.
	FootprintLines int

	// SharedFrac is the probability an access targets the globally shared
	// region (visible to all PEs) rather than the PE-private region.
	SharedFrac float64

	// SeqProb is the probability the next access continues a sequential /
	// strided run; otherwise the generator jumps to a random line.
	SeqProb float64

	// StrideLines is the stride of sequential runs, in lines.
	StrideLines int

	// Burstiness in [0,1): probability of issuing back-to-back memory
	// accesses with no compute gap, modelling divergent/bursty kernels.
	Burstiness float64

	// ComputeGap is the mean compute cycles between memory instructions
	// when not bursting.
	ComputeGap int

	// DependentFrac is the probability that a memory access has a dependent
	// consumer close behind it, stalling the PE until the reply returns —
	// the latency sensitivity of real warps.
	DependentFrac float64

	// DivergenceFrac is the probability a (warp-level) memory instruction
	// fails to coalesce into one cache line and instead touches several
	// distinct lines; the generator expands it into a zero-gap burst of
	// 2–4 accesses, the way divergent kernels (bfs, mummergpu) hammer the
	// memory system.
	DivergenceFrac float64

	// Instructions is the per-PE instruction budget at reference scale
	// (scaled by the harness to trade accuracy for runtime).
	Instructions int
}

// Validate reports malformed profiles.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workloads: empty name")
	}
	if p.MemRatio <= 0 || p.MemRatio > 1 {
		return fmt.Errorf("workloads %s: MemRatio %f outside (0,1]", p.Name, p.MemRatio)
	}
	if p.ReadFrac < 0 || p.ReadFrac > 1 {
		return fmt.Errorf("workloads %s: ReadFrac outside [0,1]", p.Name)
	}
	if p.FootprintLines < 1 {
		return fmt.Errorf("workloads %s: FootprintLines < 1", p.Name)
	}
	if p.SeqProb < 0 || p.SeqProb > 1 || p.SharedFrac < 0 || p.SharedFrac > 1 ||
		p.Burstiness < 0 || p.Burstiness >= 1 {
		return fmt.Errorf("workloads %s: probability out of range", p.Name)
	}
	if p.StrideLines < 1 || p.ComputeGap < 0 || p.Instructions < 1 {
		return fmt.Errorf("workloads %s: bad stride/gap/instructions", p.Name)
	}
	if p.DependentFrac < 0 || p.DependentFrac > 1 {
		return fmt.Errorf("workloads %s: DependentFrac out of range", p.Name)
	}
	if p.DivergenceFrac < 0 || p.DivergenceFrac > 1 {
		return fmt.Errorf("workloads %s: DivergenceFrac out of range", p.Name)
	}
	return nil
}

// Suite returns the 29 benchmarks of the paper's evaluation (names from
// Rodinia and the CUDA SDK), with profiles chosen to span the observed
// spectrum: memory-bound irregular (bfs, kmeans), streaming (streamcluster,
// vectorAdd), bursty sorting/scan kernels, and compute-bound outliers
// (myocyte, gaussian) whose latency is dominated by non-queuing time.
func Suite() []Profile {
	const L = 1 // shorthand below keeps gofmt tables narrow
	_ = L
	ps := []Profile{
		// Rodinia.
		{Name: "backprop", MemRatio: 0.32, ReadFrac: 0.72, FootprintLines: 5000, SharedFrac: 0.35, SeqProb: 0.80, StrideLines: 1, Burstiness: 0.30, ComputeGap: 4, Instructions: 1600, DependentFrac: 0.22},
		{Name: "bfs", MemRatio: 0.45, ReadFrac: 0.85, FootprintLines: 16000, SharedFrac: 0.65, SeqProb: 0.25, StrideLines: 1, Burstiness: 0.45, ComputeGap: 3, Instructions: 1500, DependentFrac: 0.38, DivergenceFrac: 0.30},
		{Name: "b+tree", MemRatio: 0.38, ReadFrac: 0.90, FootprintLines: 12000, SharedFrac: 0.55, SeqProb: 0.35, StrideLines: 2, Burstiness: 0.35, ComputeGap: 4, Instructions: 1500, DependentFrac: 0.40, DivergenceFrac: 0.25},
		{Name: "cfd", MemRatio: 0.40, ReadFrac: 0.78, FootprintLines: 9000, SharedFrac: 0.40, SeqProb: 0.70, StrideLines: 1, Burstiness: 0.40, ComputeGap: 3, Instructions: 1700, DependentFrac: 0.25},
		{Name: "dwt2d", MemRatio: 0.35, ReadFrac: 0.75, FootprintLines: 6000, SharedFrac: 0.30, SeqProb: 0.75, StrideLines: 2, Burstiness: 0.30, ComputeGap: 4, Instructions: 1600, DependentFrac: 0.22},
		{Name: "gaussian", MemRatio: 0.12, ReadFrac: 0.80, FootprintLines: 1500, SharedFrac: 0.25, SeqProb: 0.85, StrideLines: 1, Burstiness: 0.05, ComputeGap: 12, Instructions: 1800, DependentFrac: 0.30},
		{Name: "heartwall", MemRatio: 0.42, ReadFrac: 0.82, FootprintLines: 11000, SharedFrac: 0.50, SeqProb: 0.55, StrideLines: 1, Burstiness: 0.50, ComputeGap: 3, Instructions: 1500, DependentFrac: 0.28, DivergenceFrac: 0.10},
		{Name: "hotspot", MemRatio: 0.30, ReadFrac: 0.76, FootprintLines: 4000, SharedFrac: 0.30, SeqProb: 0.80, StrideLines: 1, Burstiness: 0.25, ComputeGap: 5, Instructions: 1700, DependentFrac: 0.22},
		{Name: "hybridsort", MemRatio: 0.44, ReadFrac: 0.70, FootprintLines: 14000, SharedFrac: 0.55, SeqProb: 0.45, StrideLines: 4, Burstiness: 0.50, ComputeGap: 3, Instructions: 1500, DependentFrac: 0.30, DivergenceFrac: 0.15},
		{Name: "kmeans", MemRatio: 0.50, ReadFrac: 0.88, FootprintLines: 20000, SharedFrac: 0.70, SeqProb: 0.50, StrideLines: 1, Burstiness: 0.55, ComputeGap: 2, Instructions: 1400, DependentFrac: 0.30, DivergenceFrac: 0.10},
		{Name: "lavaMD", MemRatio: 0.28, ReadFrac: 0.80, FootprintLines: 5000, SharedFrac: 0.35, SeqProb: 0.65, StrideLines: 1, Burstiness: 0.25, ComputeGap: 6, Instructions: 1700, DependentFrac: 0.25},
		{Name: "leukocyte", MemRatio: 0.25, ReadFrac: 0.83, FootprintLines: 4500, SharedFrac: 0.30, SeqProb: 0.70, StrideLines: 1, Burstiness: 0.20, ComputeGap: 7, Instructions: 1700, DependentFrac: 0.25},
		{Name: "lud", MemRatio: 0.33, ReadFrac: 0.74, FootprintLines: 6000, SharedFrac: 0.45, SeqProb: 0.65, StrideLines: 2, Burstiness: 0.30, ComputeGap: 5, Instructions: 1600, DependentFrac: 0.30},
		{Name: "mummergpu", MemRatio: 0.46, ReadFrac: 0.92, FootprintLines: 18000, SharedFrac: 0.65, SeqProb: 0.30, StrideLines: 1, Burstiness: 0.45, ComputeGap: 3, Instructions: 1400, DependentFrac: 0.42, DivergenceFrac: 0.35},
		{Name: "myocyte", MemRatio: 0.08, ReadFrac: 0.78, FootprintLines: 900, SharedFrac: 0.15, SeqProb: 0.85, StrideLines: 1, Burstiness: 0.02, ComputeGap: 16, Instructions: 1800, DependentFrac: 0.35},
		{Name: "nn", MemRatio: 0.36, ReadFrac: 0.90, FootprintLines: 8000, SharedFrac: 0.45, SeqProb: 0.60, StrideLines: 1, Burstiness: 0.35, ComputeGap: 4, Instructions: 1600, DependentFrac: 0.35},
		{Name: "nw", MemRatio: 0.37, ReadFrac: 0.72, FootprintLines: 7000, SharedFrac: 0.40, SeqProb: 0.70, StrideLines: 2, Burstiness: 0.35, ComputeGap: 4, Instructions: 1600, DependentFrac: 0.30},
		{Name: "particlefilter", MemRatio: 0.43, ReadFrac: 0.84, FootprintLines: 13000, SharedFrac: 0.60, SeqProb: 0.45, StrideLines: 1, Burstiness: 0.50, ComputeGap: 3, Instructions: 1500, DependentFrac: 0.30, DivergenceFrac: 0.15},
		{Name: "pathfinder", MemRatio: 0.34, ReadFrac: 0.80, FootprintLines: 6500, SharedFrac: 0.40, SeqProb: 0.75, StrideLines: 1, Burstiness: 0.30, ComputeGap: 4, Instructions: 1600, DependentFrac: 0.25},
		{Name: "srad", MemRatio: 0.39, ReadFrac: 0.77, FootprintLines: 9500, SharedFrac: 0.45, SeqProb: 0.70, StrideLines: 1, Burstiness: 0.40, ComputeGap: 3, Instructions: 1600, DependentFrac: 0.25},
		{Name: "streamcluster", MemRatio: 0.52, ReadFrac: 0.90, FootprintLines: 24000, SharedFrac: 0.75, SeqProb: 0.60, StrideLines: 1, Burstiness: 0.55, ComputeGap: 2, Instructions: 1400, DependentFrac: 0.32},
		// CUDA SDK.
		{Name: "blackScholes", MemRatio: 0.35, ReadFrac: 0.70, FootprintLines: 8000, SharedFrac: 0.40, SeqProb: 0.85, StrideLines: 1, Burstiness: 0.35, ComputeGap: 4, Instructions: 1600, DependentFrac: 0.18},
		{Name: "convolutionSep", MemRatio: 0.41, ReadFrac: 0.82, FootprintLines: 10000, SharedFrac: 0.45, SeqProb: 0.80, StrideLines: 1, Burstiness: 0.40, ComputeGap: 3, Instructions: 1600, DependentFrac: 0.20},
		{Name: "fastWalshTrans", MemRatio: 0.48, ReadFrac: 0.76, FootprintLines: 16000, SharedFrac: 0.60, SeqProb: 0.55, StrideLines: 8, Burstiness: 0.60, ComputeGap: 2, Instructions: 1400, DependentFrac: 0.25},
		{Name: "histogram", MemRatio: 0.40, ReadFrac: 0.68, FootprintLines: 9000, SharedFrac: 0.55, SeqProb: 0.40, StrideLines: 1, Burstiness: 0.40, ComputeGap: 3, Instructions: 1500, DependentFrac: 0.28, DivergenceFrac: 0.20},
		{Name: "matrixMul", MemRatio: 0.30, ReadFrac: 0.85, FootprintLines: 5000, SharedFrac: 0.35, SeqProb: 0.80, StrideLines: 1, Burstiness: 0.25, ComputeGap: 5, Instructions: 1700, DependentFrac: 0.25},
		{Name: "monteCarlo", MemRatio: 0.44, ReadFrac: 0.88, FootprintLines: 15000, SharedFrac: 0.60, SeqProb: 0.35, StrideLines: 1, Burstiness: 0.50, ComputeGap: 3, Instructions: 1500, DependentFrac: 0.32, DivergenceFrac: 0.20},
		{Name: "scan", MemRatio: 0.47, ReadFrac: 0.74, FootprintLines: 15000, SharedFrac: 0.60, SeqProb: 0.70, StrideLines: 4, Burstiness: 0.60, ComputeGap: 2, Instructions: 1400, DependentFrac: 0.28},
		{Name: "sortingNetworks", MemRatio: 0.49, ReadFrac: 0.72, FootprintLines: 17000, SharedFrac: 0.65, SeqProb: 0.50, StrideLines: 8, Burstiness: 0.60, ComputeGap: 2, Instructions: 1400, DependentFrac: 0.30},
	}
	return ps
}

// Uniform returns the synthetic uniform-random traffic profile: every access
// jumps to a random line in a large shared footprint, with no sequential runs
// and no bursts. It is not part of the paper's 29-benchmark suite — it is the
// classic NoC stress pattern used by determinism cross-checks and benchmarks
// that want traffic spread evenly over the mesh rather than shaped by a
// kernel's locality.
func Uniform() Profile {
	return Profile{
		Name:           "uniform",
		MemRatio:       0.45,
		ReadFrac:       0.85,
		FootprintLines: 32000,
		SharedFrac:     0.90,
		SeqProb:        0,
		StrideLines:    1,
		ComputeGap:     3,
		Instructions:   1500,
		DependentFrac:  0.25,
	}
}

// ByName returns the named profile from the suite, or the synthetic
// "uniform" pattern (see Uniform).
func ByName(name string) (Profile, error) {
	if name == "uniform" {
		return Uniform(), nil
	}
	for _, p := range Suite() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Op is one generated instruction: Gap compute cycles followed by an
// optional memory access.
type Op struct {
	Gap       int    // compute cycles before the access issues
	IsMem     bool   // false = pure compute instruction
	Addr      uint64 // line-aligned byte address (valid when IsMem)
	Write     bool
	Dependent bool // a consumer needs the data: the PE stalls until reply
}

// Generator produces a deterministic instruction stream for one PE.
type Generator struct {
	p        Profile
	rng      *rand.Rand
	pe       int
	lastLine uint64
	issued   int
	total    int
	burst    []Op // pending divergent accesses, emitted before new ops
}

// LineBytes is the cache line size of the generated address stream.
const LineBytes = 128

// sharedBase is the byte address where the globally shared region starts.
const sharedBase = uint64(1) << 40

// NewGenerator builds a generator for PE pe with the given instruction
// budget (use p.Instructions scaled by the harness).
func (p Profile) NewGenerator(pe int, instructions int, seed int64) *Generator {
	return &Generator{
		p:     p,
		rng:   rand.New(rand.NewSource(seed ^ int64(pe)*0x7F4A7C15_9E37_79B9)),
		pe:    pe,
		total: instructions,
	}
}

// Remaining returns the number of instructions not yet generated.
func (g *Generator) Remaining() int { return g.total - g.issued }

// Done reports whether the budget is exhausted.
func (g *Generator) Done() bool { return g.issued >= g.total }

// Next produces the next instruction. Calling Next after Done returns pure
// compute no-ops.
func (g *Generator) Next() Op {
	if len(g.burst) > 0 {
		op := g.burst[0]
		g.burst = g.burst[1:]
		return op
	}
	if g.Done() {
		return Op{Gap: 1}
	}
	g.issued++
	if g.rng.Float64() >= g.p.MemRatio {
		return Op{Gap: 1}
	}
	gap := 0
	if g.rng.Float64() >= g.p.Burstiness {
		// Exponential-ish compute gap around the mean.
		gap = 1 + g.rng.Intn(2*g.p.ComputeGap+1)
	}
	var line uint64
	if g.rng.Float64() < g.p.SeqProb && g.lastLine != 0 {
		line = g.lastLine + uint64(g.p.StrideLines)
	} else {
		line = uint64(g.rng.Intn(g.p.FootprintLines))
	}
	line %= uint64(g.p.FootprintLines)
	g.lastLine = line
	var addr uint64
	if g.rng.Float64() < g.p.SharedFrac {
		addr = sharedBase + line*LineBytes
	} else {
		// PE-private region: distinct address spaces per PE.
		addr = (uint64(g.pe+1) << 28) | (line * LineBytes)
	}
	write := g.rng.Float64() >= g.p.ReadFrac
	op := Op{
		Gap:       gap,
		IsMem:     true,
		Addr:      addr,
		Write:     write,
		Dependent: !write && g.rng.Float64() < g.p.DependentFrac,
	}
	// Divergence: the warp's lanes touch several distinct lines; emit the
	// extras as a zero-gap burst of additional same-kind accesses. Bursts
	// ride on the same instruction budget slot (they model one instruction).
	if g.p.DivergenceFrac > 0 && g.rng.Float64() < g.p.DivergenceFrac {
		extra := 1 + g.rng.Intn(3)
		for k := 0; k < extra; k++ {
			line := uint64(g.rng.Intn(g.p.FootprintLines))
			var a uint64
			if g.rng.Float64() < g.p.SharedFrac {
				a = sharedBase + line*LineBytes
			} else {
				a = (uint64(g.pe+1) << 28) | (line * LineBytes)
			}
			g.burst = append(g.burst, Op{IsMem: true, Addr: a, Write: op.Write})
		}
	}
	return op
}
