package workloads

import (
	"math"
	"testing"
)

func TestSuiteHas29Benchmarks(t *testing.T) {
	if got := len(Suite()); got != 29 {
		t.Fatalf("suite has %d benchmarks, want 29 (paper §5)", got)
	}
}

func TestSuiteProfilesValid(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Suite() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate benchmark %s", p.Name)
		}
		names[p.Name] = true
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("kmeans")
	if err != nil || p.Name != "kmeans" {
		t.Fatalf("ByName(kmeans): %v %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSuiteIsReadDominant(t *testing.T) {
	// §2.2: reply traffic (dominated by read replies) accounts for ~72.7% of
	// bits. That requires a read-dominant suite overall.
	sum := 0.0
	for _, p := range Suite() {
		sum += p.ReadFrac
	}
	if avg := sum / 29; avg < 0.7 {
		t.Errorf("average read fraction %f < 0.7", avg)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := ByName("bfs")
	a := p.NewGenerator(3, 500, 42)
	b := p.NewGenerator(3, 500, 42)
	for i := 0; i < 500; i++ {
		oa, ob := a.Next(), b.Next()
		if oa != ob {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, oa, ob)
		}
	}
}

func TestGeneratorPEStreamsDiffer(t *testing.T) {
	p, _ := ByName("bfs")
	a := p.NewGenerator(0, 200, 42)
	b := p.NewGenerator(1, 200, 42)
	same := 0
	for i := 0; i < 200; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 200 {
		t.Error("PE streams identical")
	}
}

func TestGeneratorBudget(t *testing.T) {
	p, _ := ByName("hotspot")
	g := p.NewGenerator(0, 100, 1)
	for i := 0; i < 100; i++ {
		if g.Done() {
			t.Fatalf("done after %d of 100", i)
		}
		g.Next()
	}
	if !g.Done() || g.Remaining() != 0 {
		t.Error("budget accounting wrong")
	}
	if op := g.Next(); op.IsMem {
		t.Error("post-budget ops should be compute no-ops")
	}
}

func TestGeneratorMemRatioApproximate(t *testing.T) {
	for _, name := range []string{"kmeans", "myocyte", "scan"} {
		p, _ := ByName(name)
		g := p.NewGenerator(0, 20000, 7)
		mem := 0
		for i := 0; i < 20000; i++ {
			if g.Next().IsMem {
				mem++
			}
		}
		got := float64(mem) / 20000
		if math.Abs(got-p.MemRatio) > 0.05 {
			t.Errorf("%s: measured mem ratio %f vs profile %f", name, got, p.MemRatio)
		}
	}
}

func TestGeneratorReadFracApproximate(t *testing.T) {
	p, _ := ByName("histogram")
	g := p.NewGenerator(0, 40000, 7)
	reads, mems := 0, 0
	for i := 0; i < 40000; i++ {
		op := g.Next()
		if op.IsMem {
			mems++
			if !op.Write {
				reads++
			}
		}
	}
	got := float64(reads) / float64(mems)
	if math.Abs(got-p.ReadFrac) > 0.05 {
		t.Errorf("measured read frac %f vs profile %f", got, p.ReadFrac)
	}
}

func TestGeneratorAddressesWithinFootprint(t *testing.T) {
	p, _ := ByName("bfs")
	g := p.NewGenerator(2, 5000, 9)
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if !op.IsMem {
			continue
		}
		if op.Addr%LineBytes != 0 {
			t.Fatalf("address %x not line aligned", op.Addr)
		}
		var line uint64
		if op.Addr >= sharedBase {
			line = (op.Addr - sharedBase) / LineBytes
		} else {
			line = (op.Addr & ((1 << 28) - 1)) / LineBytes
		}
		if line >= uint64(p.FootprintLines) {
			t.Fatalf("line %d outside footprint %d", line, p.FootprintLines)
		}
	}
}

func TestGeneratorSharedVsPrivate(t *testing.T) {
	p, _ := ByName("streamcluster") // SharedFrac 0.75
	g := p.NewGenerator(4, 30000, 11)
	shared, mems := 0, 0
	for i := 0; i < 30000; i++ {
		op := g.Next()
		if op.IsMem {
			mems++
			if op.Addr >= sharedBase {
				shared++
			}
		}
	}
	got := float64(shared) / float64(mems)
	if math.Abs(got-p.SharedFrac) > 0.05 {
		t.Errorf("shared fraction %f vs profile %f", got, p.SharedFrac)
	}
}

func TestComputeBoundVsMemoryBoundContrast(t *testing.T) {
	// myocyte (compute-bound) must produce far fewer memory ops per
	// instruction than streamcluster (memory-bound): the contrast behind the
	// Figure 9 per-benchmark spread.
	count := func(name string) int {
		p, _ := ByName(name)
		g := p.NewGenerator(0, 10000, 3)
		mem := 0
		for i := 0; i < 10000; i++ {
			if g.Next().IsMem {
				mem++
			}
		}
		return mem
	}
	if m, s := count("myocyte"), count("streamcluster"); m*3 > s {
		t.Errorf("myocyte (%d) not ≪ streamcluster (%d)", m, s)
	}
}

func TestDivergenceBursts(t *testing.T) {
	p, _ := ByName("bfs") // DivergenceFrac 0.30
	g := p.NewGenerator(0, 5000, 21)
	mem, zeroGapRuns := 0, 0
	prevMem := false
	for i := 0; i < 20000; i++ { // bursts extend past the budget count
		op := g.Next()
		if op.IsMem {
			mem++
			if prevMem && op.Gap == 0 {
				zeroGapRuns++
			}
			prevMem = true
		} else {
			prevMem = false
		}
		if g.Done() && len(gBurst(g)) == 0 && i > 5000 {
			break
		}
	}
	if zeroGapRuns == 0 {
		t.Error("no divergent bursts observed")
	}
	if mem == 0 {
		t.Fatal("no memory ops")
	}
}

// gBurst exposes the pending burst length for the test above.
func gBurst(g *Generator) []Op { return g.burst }

func TestDivergenceValidation(t *testing.T) {
	p, _ := ByName("bfs")
	p.DivergenceFrac = 1.5
	if p.Validate() == nil {
		t.Error("out-of-range divergence accepted")
	}
}

func TestNonDivergentProfileHasNoBursts(t *testing.T) {
	p, _ := ByName("gaussian") // no divergence configured
	if p.DivergenceFrac != 0 {
		t.Skip("profile gained divergence")
	}
	g := p.NewGenerator(0, 3000, 5)
	prevMem := false
	for i := 0; i < 3000; i++ {
		op := g.Next()
		if op.IsMem && prevMem && op.Gap == 0 {
			// gaussian has Burstiness 0.05 so zero gaps are possible but rare;
			// just ensure the burst queue is never used.
			if len(g.burst) > 0 {
				t.Fatal("burst queue used without divergence")
			}
		}
		prevMem = op.IsMem
	}
}
