package equinox

import (
	"fmt"

	"equinox/internal/sim"
	"equinox/internal/stats"
)

// ScalabilityPoint is one mesh size of the Figure 12 study.
type ScalabilityPoint struct {
	Side        int
	BaseIPC     float64 // SeparateBase mean IPC
	EquiNoxIPC  float64
	Improvement float64 // EquiNoxIPC / BaseIPC
}

// ScalabilityStudy reproduces Figure 12: for each mesh side, run the same
// design flow (N-Queen + EIR selection), then compare EquiNox's mean IPC
// against SeparateBase over the given benchmarks. The paper reports the
// improvement growing with network size (1.23× → 1.31× → 1.30×).
func ScalabilityStudy(sides []int, benches []string, instrPerPE int, seed int64) ([]ScalabilityPoint, error) {
	if len(sides) == 0 || len(benches) == 0 {
		return nil, fmt.Errorf("equinox: empty scalability study")
	}
	var out []ScalabilityPoint
	for _, side := range sides {
		design, err := DesignForMesh(side, side, 8)
		if err != nil {
			return nil, fmt.Errorf("design %dx%d: %w", side, side, err)
		}
		ipc := map[sim.SchemeKind]float64{}
		for _, scheme := range []sim.SchemeKind{sim.SeparateBase, sim.EquiNox} {
			var vals []float64
			for _, b := range benches {
				res, err := RunBenchmark(RunConfig{
					Scheme: scheme, Benchmark: b,
					Width: side, Height: side, NumCBs: 8,
					Design: design, InstructionsPerPE: instrPerPE, Seed: seed,
				})
				if err != nil {
					return nil, fmt.Errorf("%dx%d %v/%s: %w", side, side, scheme, b, err)
				}
				vals = append(vals, res.IPC)
			}
			ipc[scheme] = stats.Mean(vals)
		}
		out = append(out, ScalabilityPoint{
			Side:        side,
			BaseIPC:     ipc[sim.SeparateBase],
			EquiNoxIPC:  ipc[sim.EquiNox],
			Improvement: ipc[sim.EquiNox] / ipc[sim.SeparateBase],
		})
	}
	return out, nil
}

// Figure12 renders the study as a Table.
func Figure12(points []ScalabilityPoint) Table {
	t := Table{
		Title:  "Figure 12: Scalability (mean IPC improvement of EquiNox over SeparateBase)",
		Header: []string{"mesh", "SeparateBase IPC", "EquiNox IPC", "improvement"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", p.Side, p.Side),
			fmt.Sprintf("%.2f", p.BaseIPC),
			fmt.Sprintf("%.2f", p.EquiNoxIPC),
			fmt.Sprintf("%.2fx", p.Improvement),
		})
	}
	return t
}
