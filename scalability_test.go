package equinox

import (
	"strings"
	"testing"
)

func TestScalabilityStudySmall(t *testing.T) {
	pts, err := ScalabilityStudy([]int{8}, []string{"hotspot"}, 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("%d points", len(pts))
	}
	p := pts[0]
	if p.Side != 8 || p.BaseIPC <= 0 || p.EquiNoxIPC <= 0 {
		t.Errorf("bad point: %+v", p)
	}
	if p.Improvement <= 1.0 {
		t.Errorf("EquiNox improvement %.2fx not above 1", p.Improvement)
	}
	tab := Figure12(pts)
	if !strings.Contains(tab.String(), "8x8") {
		t.Error("figure 12 table malformed")
	}
}

func TestScalabilityStudyErrors(t *testing.T) {
	if _, err := ScalabilityStudy(nil, []string{"bfs"}, 100, 1); err == nil {
		t.Error("empty sides accepted")
	}
	if _, err := ScalabilityStudy([]int{8}, nil, 100, 1); err == nil {
		t.Error("empty benches accepted")
	}
	if _, err := ScalabilityStudy([]int{8}, []string{"nope"}, 100, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
