package equinox

import (
	"fmt"
	"math"
	"strings"

	"equinox/internal/interposer"
	"equinox/internal/placement"
	"equinox/internal/sim"
	"equinox/internal/stats"
)

// cmeshBumpPlan builds the Interposer-CMesh wiring plan used for the §6.6
// µbump accounting (256-bit spokes, one bump endpoint per wire).
func cmeshBumpPlan(w, h int) *interposer.Plan {
	if w == 0 {
		w, h = 8, 8
	}
	return interposer.CMeshPlan(w, h, 256)
}

// Table is a printable result table (one per paper table/figure).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// figure9 builds a per-benchmark normalized table for one metric.
func (ev *Evaluation) figure9(title string, m metric, base sim.SchemeKind) Table {
	t := Table{Title: title, Header: []string{"benchmark"}}
	for _, s := range ev.Schemes {
		t.Header = append(t.Header, s.String())
	}
	per := ev.normalizedPerBenchmark(m, base)
	for i, b := range ev.Benches {
		row := []string{b}
		for _, s := range ev.Schemes {
			if v := per[s][i]; math.IsNaN(v) {
				row = append(row, "-") // run failed; excluded from the geomean
			} else {
				row = append(row, fmt.Sprintf("%.3f", v))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	avg := ev.GeoMeanNormalized(m, base)
	row := []string{"AVG(geomean)"}
	for _, s := range ev.Schemes {
		row = append(row, fmt.Sprintf("%.3f", avg[s]))
	}
	t.Rows = append(t.Rows, row)
	return t
}

// Figure9a regenerates Figure 9(a): execution time normalized to SingleBase.
func (ev *Evaluation) Figure9a() Table {
	return ev.figure9("Figure 9(a): Execution time (normalized to SingleBase)", execTime, sim.SingleBase)
}

// Figure9b regenerates Figure 9(b): NoC energy normalized to SingleBase.
func (ev *Evaluation) Figure9b() Table {
	return ev.figure9("Figure 9(b): NoC energy (normalized to SingleBase)", energy, sim.SingleBase)
}

// Figure9c regenerates Figure 9(c): EDP normalized to SingleBase.
func (ev *Evaluation) Figure9c() Table {
	return ev.figure9("Figure 9(c): Energy-delay product (normalized to SingleBase)", edp, sim.SingleBase)
}

// Figure10 regenerates Figure 10: packet latency in ns, broken into
// request/reply × queuing/non-queuing, normalized to SingleBase's total.
func (ev *Evaluation) Figure10() Table {
	t := Table{
		Title:  "Figure 10: Normalized packet latency breakdown (vs SingleBase total)",
		Header: []string{"scheme", "reqQueue", "reqNet", "repQueue", "repNet", "total"},
	}
	for _, s := range ev.Schemes {
		rq, rn, pq, pn := ev.latencyParts(s, sim.SingleBase)
		t.Rows = append(t.Rows, []string{
			s.String(),
			fmt.Sprintf("%.3f", rq), fmt.Sprintf("%.3f", rn),
			fmt.Sprintf("%.3f", pq), fmt.Sprintf("%.3f", pn),
			fmt.Sprintf("%.3f", rq+rn+pq+pn),
		})
	}
	return t
}

// Figure11 regenerates Figure 11: NoC area per scheme.
func (ev *Evaluation) Figure11() Table {
	t := Table{Title: "Figure 11: NoC area", Header: []string{"scheme", "area (mm²)", "vs SeparateBase"}}
	areas := ev.AreaSummary()
	base := areas[sim.SeparateBase]
	for _, s := range ev.Schemes {
		rel := "-"
		if base > 0 {
			rel = fmt.Sprintf("%+.1f%%", (areas[s]/base-1)*100)
		}
		t.Rows = append(t.Rows, []string{s.String(), fmt.Sprintf("%.3f", areas[s]), rel})
	}
	return t
}

// Table1 echoes the simulated configuration (the paper's Table 1).
func Table1(cfg EvalConfig) Table {
	sc := sim.DefaultConfig(sim.SeparateBase)
	if cfg.Width > 0 {
		sc.Width, sc.Height = cfg.Width, cfg.Height
	}
	if cfg.NumCBs > 0 {
		sc.NumCBs = cfg.NumCBs
	}
	t := Table{Title: "Table 1: Key parameters in simulation", Header: []string{"parameter", "value"}}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("Network size", fmt.Sprintf("%dx%d (also 12x12, 16x16 for scalability)", sc.Width, sc.Height))
	add("Network routing", "Minimum adaptive (XY escape VC)")
	add("Virtual channel", "2/port, 1 pkt/VC")
	add("Allocator", "Separable input first")
	add("PE frequency", fmt.Sprintf("%.0f MHz", sc.CoreClockGHz*1000))
	add("L1 cache / PE", fmt.Sprintf("%d KB", sc.PE.L1Bytes/1024))
	add("L2 cache (LLC) per bank", fmt.Sprintf("%d MB", sc.CB.L2Bytes/(1024*1024)))
	add("# of LLC banks", fmt.Sprintf("%d", sc.NumCBs))
	add("HBM bandwidth", fmt.Sprintf("%.0f GB/s per stack",
		sc.CB.HBM.PeakBytesPerCycle()*sc.CoreClockGHz))
	add("Memory controllers", fmt.Sprintf("%d, FR-FCFS", sc.NumCBs))
	return t
}

// Figure4 runs the placement heat-map experiment and renders the maps with
// their variances (paper Figure 4 + the N-Queen panel of Figure 5).
func Figure4(w, h, numCBs, cycles int, seed int64) (string, error) {
	rs, err := stats.PlacementHeatmaps(w, h, numCBs, cycles, seed)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("== Figure 4: Heat map of average router traversal cycles ==\n")
	for _, r := range rs {
		b.WriteString(r.Render())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// UbumpComparison regenerates §6.6's µbump accounting.
func UbumpComparison(ev *Evaluation) Table {
	t := Table{
		Title:  "Section 6.6: µbump comparison",
		Header: []string{"scheme", "uni-dir links", "bits/link", "µbumps", "area (mm²)"},
	}
	cm := cmeshBumpPlan(ev.Config.Width, ev.Config.Height)
	cr := cm.Summarize()
	t.Rows = append(t.Rows, []string{"Interposer-CMesh",
		fmt.Sprintf("%d", cr.Wires), "256", fmt.Sprintf("%d", cr.Bumps),
		fmt.Sprintf("%.2f", cr.BumpAreaMM2)})
	if ev.Design != nil {
		er := ev.Design.Plan.Summarize()
		t.Rows = append(t.Rows, []string{"EquiNox",
			fmt.Sprintf("%d", er.Wires), "128", fmt.Sprintf("%d", er.Bumps),
			fmt.Sprintf("%.2f", er.BumpAreaMM2)})
		if cr.Bumps > 0 {
			red := (1 - float64(er.Bumps)/float64(cr.Bumps)) * 100
			t.Rows = append(t.Rows, []string{"reduction", "", "", fmt.Sprintf("%.2f%%", red), ""})
		}
	}
	return t
}

// NQueenScores lists the hot-zone penalty of every placement strategy
// (Figure 5's scoring policy applied across Figure 4's placements).
func NQueenScores(w, h, numCBs int) (Table, error) {
	t := Table{Title: "Placement hot-zone penalty scores", Header: []string{"placement", "score"}}
	for _, k := range placement.Kinds() {
		pl, err := placement.New(k, w, h, numCBs)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{k.String(), fmt.Sprintf("%d", placement.Score(pl))})
	}
	return t, nil
}
