package equinox

import (
	"fmt"

	"equinox/internal/sim"
	"equinox/internal/workloads"
)

// ParseScheme resolves a scheme by its display name ("EquiNox",
// "SeparateBase", …). It is the inverse of sim.SchemeKind.String.
func ParseScheme(name string) (sim.SchemeKind, error) {
	for _, s := range sim.AllSchemes() {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("equinox: unknown scheme %q (known: %v)", name, sim.AllSchemes())
}

// knownBenchmark reports whether name is in the 29-benchmark suite.
func knownBenchmark(name string) bool {
	_, err := workloads.ByName(name)
	return err == nil
}

// Validate reports RunConfig errors with actionable messages, so callers
// (the evaluation server in particular) can reject bad requests up front
// instead of crashing a worker mid-sweep.
func (rc RunConfig) Validate() error {
	if rc.Scheme < 0 || rc.Scheme >= sim.NumSchemes {
		return fmt.Errorf("equinox: unknown scheme %d (0..%d)", int(rc.Scheme), int(sim.NumSchemes)-1)
	}
	if rc.Benchmark == "" {
		return fmt.Errorf("equinox: no benchmark named (see Benchmarks())")
	}
	if !knownBenchmark(rc.Benchmark) {
		return fmt.Errorf("equinox: unknown benchmark %q (see Benchmarks())", rc.Benchmark)
	}
	if rc.Width < 0 || rc.Height < 0 {
		return fmt.Errorf("equinox: negative mesh dimensions %dx%d", rc.Width, rc.Height)
	}
	if rc.NumCBs < 0 {
		return fmt.Errorf("equinox: negative cache-bank count %d", rc.NumCBs)
	}
	w, h, cbs := rc.Width, rc.Height, rc.NumCBs
	if w == 0 {
		w = 8
	}
	if h == 0 {
		h = 8
	}
	if cbs == 0 {
		cbs = 8
	}
	if w < 2 || h < 2 {
		return fmt.Errorf("equinox: mesh %dx%d too small (minimum 2x2)", w, h)
	}
	if cbs >= w*h {
		return fmt.Errorf("equinox: %d cache banks leave no PEs on a %dx%d mesh (%d nodes)", cbs, w, h, w*h)
	}
	if rc.InstructionsPerPE < 0 {
		return fmt.Errorf("equinox: negative InstructionsPerPE %d", rc.InstructionsPerPE)
	}
	if rc.Scheme == sim.EquiNox && rc.Design == nil {
		return fmt.Errorf("equinox: EquiNox runs need a Design (see equinox.Design)")
	}
	if rc.Parallel < 0 {
		return fmt.Errorf("equinox: negative Parallel %d", rc.Parallel)
	}
	return nil
}

// Normalize returns the configuration with defaults applied: the 8×8/8-CB
// mesh, all seven schemes, and the full benchmark suite. RunEvaluation and
// the job server both canonicalize through it, so a defaulted field and its
// explicit default value describe the same sweep.
func (cfg EvalConfig) Normalize() EvalConfig {
	if cfg.Width == 0 {
		cfg.Width, cfg.Height, cfg.NumCBs = 8, 8, 8
	}
	if cfg.Height == 0 {
		cfg.Height = cfg.Width
	}
	if cfg.NumCBs == 0 {
		cfg.NumCBs = 8
	}
	if cfg.Schemes == nil {
		cfg.Schemes = sim.AllSchemes()
	}
	if cfg.Benchmarks == nil {
		cfg.Benchmarks = Benchmarks()
	}
	return cfg
}

// Validate reports EvalConfig errors with actionable messages. Callers
// should Normalize first; RunEvaluation does both.
func (cfg EvalConfig) Validate() error {
	if cfg.Width < 0 || cfg.Height < 0 {
		return fmt.Errorf("equinox: negative mesh dimensions %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.Width < 2 || cfg.Height < 2 {
		return fmt.Errorf("equinox: mesh %dx%d too small (minimum 2x2)", cfg.Width, cfg.Height)
	}
	if cfg.NumCBs < 1 {
		return fmt.Errorf("equinox: need at least one cache bank, got %d", cfg.NumCBs)
	}
	if cfg.NumCBs >= cfg.Width*cfg.Height {
		return fmt.Errorf("equinox: %d cache banks leave no PEs on a %dx%d mesh (%d nodes)",
			cfg.NumCBs, cfg.Width, cfg.Height, cfg.Width*cfg.Height)
	}
	for _, s := range cfg.Schemes {
		if s < 0 || s >= sim.NumSchemes {
			return fmt.Errorf("equinox: unknown scheme %d (0..%d)", int(s), int(sim.NumSchemes)-1)
		}
	}
	for _, b := range cfg.Benchmarks {
		if !knownBenchmark(b) {
			return fmt.Errorf("equinox: unknown benchmark %q (see Benchmarks())", b)
		}
	}
	if cfg.InstructionsPerPE < 0 {
		return fmt.Errorf("equinox: negative InstructionsPerPE %d", cfg.InstructionsPerPE)
	}
	if cfg.Parallelism < 0 {
		return fmt.Errorf("equinox: negative Parallelism %d", cfg.Parallelism)
	}
	if cfg.Parallel < 0 {
		return fmt.Errorf("equinox: negative Parallel %d", cfg.Parallel)
	}
	return nil
}
